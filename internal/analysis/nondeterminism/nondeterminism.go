// Package nondeterminism implements the simlint analyzer enforcing the
// repository's core replay invariant: a simulator run is a pure function
// of its StreamConfig. Three classes of construct break that silently and
// are forbidden in the deterministic package set:
//
//   - wall-clock reads and real timers (time.Now, time.Since, time.Sleep,
//     timer constructors) — simulated time only ever advances through
//     sim.Sim's virtual clock;
//   - the process-global math/rand PRNG — randomness must come from a
//     seeded generator constructed from config (see the seededrand
//     analyzer for the seed-flow check);
//   - iteration over a map whose loop body is order-sensitive: schedules
//     events, charges cycles/memory accounting, emits telemetry, appends
//     to an output slice, or writes state where the last writer wins. Go
//     randomizes map iteration order per process, so any such loop makes
//     two runs of the same config diverge — the classic Go replay-breaker.
//
// Order-insensitive map-loop bodies are recognized and allowed: integer
// accumulation (n += len(v) and friends — commutative on integers, unlike
// floats), writes keyed by the range key (dst[k] = f(v) hits each key
// once), and deletes from the ranged map (sanctioned by the spec).
//
// The escape hatch is the //simlint:sorted annotation on the line of (or
// immediately above) the range statement, followed by a justification.
// It is accepted only for collect-then-sort loops: the body may do nothing
// order-sensitive beyond appending to slices, and every such slice must be
// passed to a sort (sort.* / slices.Sort*) later in the same function.
package nondeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/astcheck"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/simlintcfg"
)

// Analyzer is the nondeterminism analyzer.
var Analyzer = &framework.Analyzer{
	Name: "nondeterminism",
	Doc: "forbid wall-clock reads, global math/rand, and order-sensitive map iteration in simulator packages\n\n" +
		"The simulator's replay invariant requires every run to be a pure function of its StreamConfig.",
	Run: run,
}

// wallClockFuncs are the package time functions that read host time or
// arm real timers.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"AfterFunc": true,
}

// randConstructors are the math/rand functions that build an explicitly
// seeded generator; they are the seededrand analyzer's business, not ours.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func run(pass *framework.Pass) (interface{}, error) {
	if !simlintcfg.IsDeterministic(pass.ModulePath, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		// Wall-clock and global-rand calls are forbidden anywhere in the
		// file, including package-level variable initializers.
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkCall(pass, call)
			}
			return true
		})
		annotations := sortedAnnotations(pass.Fset, file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, annotations)
		}
	}
	return nil, nil
}

// annotation is one parsed //simlint:sorted comment.
type annotation struct {
	justification string
	pos           token.Pos
}

// sortedAnnotations maps source lines to the //simlint:sorted annotation
// that governs them: an annotation on line N governs range statements on
// line N (trailing comment) and line N+1 (preceding line).
func sortedAnnotations(fset *token.FileSet, file *ast.File) map[int]annotation {
	out := make(map[int]annotation)
	marker := strings.TrimPrefix(simlintcfg.SortedAnnotation, "//")
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, marker) {
				continue
			}
			a := annotation{
				justification: strings.TrimSpace(strings.TrimPrefix(text, marker)),
				pos:           c.Pos(),
			}
			line := fset.Position(c.Pos()).Line
			out[line] = a
			out[line+1] = a
		}
	}
	return out
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl, annotations map[int]annotation) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if rng, ok := n.(*ast.RangeStmt); ok {
			checkRange(pass, fd, rng, annotations)
		}
		return true
	})
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	fn := astcheck.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	switch astcheck.FuncPkgPath(fn) {
	case "time":
		if wallClockFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock or arms a real timer; simulator packages advance time only through the virtual clock (sim.Sim) so runs replay bit-identically [nondeterminism]",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"math/rand.%s draws from the process-global PRNG; use a generator seeded from config (LossConfig.Seed-style) so runs replay bit-identically [nondeterminism]",
				fn.Name())
		}
	}
}

// violation classifies one order-sensitive operation in a map-range body.
type violation struct {
	pos    token.Pos
	what   string       // human description, e.g. "schedules events (Schedule)"
	append types.Object // non-nil iff the violation is an append to this slice
}

func checkRange(pass *framework.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, annotations map[int]annotation) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	viols := scanRangeBody(pass, rng)
	ann, annotated := annotations[pass.Fset.Position(rng.Pos()).Line]

	if !annotated {
		for _, v := range viols {
			pass.Reportf(v.pos,
				"map iteration order is randomized but this loop body %s; iterate sorted keys, restructure, or annotate the range with %s <justification> and sort what it collects [nondeterminism]",
				v.what, simlintcfg.SortedAnnotation)
		}
		return
	}

	// Annotated: the only excusable shape is collect-then-sort.
	if ann.justification == "" {
		pass.Reportf(rng.Pos(), "%s annotation requires a justification after the marker [nondeterminism]", simlintcfg.SortedAnnotation)
	}
	targets := map[types.Object]token.Pos{}
	for _, v := range viols {
		if v.append == nil {
			pass.Reportf(v.pos,
				"%s cannot excuse a map-range body that %s; only collect-then-sort loops may be annotated [nondeterminism]",
				simlintcfg.SortedAnnotation, v.what)
			continue
		}
		targets[v.append] = v.pos
	}
	for obj, pos := range targets {
		if !feedsSort(pass, fd, rng, obj) {
			pass.Reportf(pos,
				"annotated %s but %s is never passed to a sort after the loop in this function [nondeterminism]",
				simlintcfg.SortedAnnotation, obj.Name())
		}
	}
}

// scanRangeBody classifies every order-sensitive operation in the body of
// a map range statement.
func scanRangeBody(pass *framework.Pass, rng *ast.RangeStmt) []violation {
	info := pass.TypesInfo
	keyObj := rangeKeyObject(info, rng)
	rangedObj := astcheck.ExprObject(info, rng.X)

	var viols []violation
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if v, ok := classifyCall(pass, x, rng, keyObj, rangedObj); ok {
				viols = append(viols, v)
			}
		case *ast.AssignStmt:
			viols = append(viols, classifyAssign(pass, x, rng, keyObj)...)
		case *ast.IncDecStmt:
			if v, ok := classifyIncDec(pass, x, rng); ok {
				viols = append(viols, v)
			}
		}
		return true
	})
	return viols
}

func rangeKeyObject(info *types.Info, rng *ast.RangeStmt) types.Object {
	if id, ok := rng.Key.(*ast.Ident); ok && id.Name != "_" {
		return info.ObjectOf(id)
	}
	return nil
}

// classifyCall flags scheduling, accounting, and telemetry calls, plus
// order-sensitive deletes, inside a map-range body.
func classifyCall(pass *framework.Pass, call *ast.CallExpr, rng *ast.RangeStmt, keyObj, rangedObj types.Object) (violation, bool) {
	info := pass.TypesInfo
	if astcheck.IsBuiltin(info, call, "delete") && len(call.Args) == 2 {
		// delete(ranged, k) and delete(other, rangeKey) are keyed and fine;
		// deleting an unrelated key depends on visit order.
		m := astcheck.ExprObject(info, call.Args[0])
		if rangedObj != nil && m == rangedObj {
			return violation{}, false
		}
		if kid, ok := ast.Unparen(call.Args[1]).(*ast.Ident); ok && keyObj != nil && info.ObjectOf(kid) == keyObj {
			return violation{}, false
		}
		return violation{pos: call.Pos(), what: "deletes map entries not keyed by the range key"}, true
	}
	fn := astcheck.CalleeFunc(info, call)
	if fn == nil {
		return violation{}, false
	}
	if simlintcfg.SchedulerFuncNames[fn.Name()] {
		return violation{pos: call.Pos(), what: "schedules events (" + fn.Name() + ")"}, true
	}
	pkg := astcheck.FuncPkgPath(fn)
	if simlintcfg.IsPricing(pass.ModulePath, pkg) {
		return violation{pos: call.Pos(), what: "charges cycle/memory accounting (" + fn.Name() + ")"}, true
	}
	if simlintcfg.IsTelemetry(pass.ModulePath, pkg) {
		return violation{pos: call.Pos(), what: "emits telemetry (" + fn.Name() + ")"}, true
	}
	return violation{}, false
}

// classifyAssign flags writes to state declared outside the loop whose
// result depends on iteration order.
func classifyAssign(pass *framework.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, keyObj types.Object) []violation {
	if as.Tok == token.DEFINE {
		return nil
	}
	info := pass.TypesInfo
	var viols []violation
	for i, lhs := range as.Lhs {
		root := astcheck.RootIdent(lhs)
		if root == nil {
			viols = append(viols, violation{pos: lhs.Pos(), what: "writes through a computed lvalue"})
			continue
		}
		if root.Name == "_" || astcheck.DeclaredWithin(info, root, rng.Pos(), rng.End()) {
			continue
		}
		// dst[k] = v keyed by the range key touches each key exactly once.
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && keyObj != nil {
			if kid, ok := ast.Unparen(ix.Index).(*ast.Ident); ok && info.ObjectOf(kid) == keyObj {
				continue
			}
		}
		// Integer accumulation is commutative; float accumulation is not.
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
			token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			if t := info.TypeOf(lhs); t != nil && astcheck.IsIntegerType(t) {
				continue
			}
			viols = append(viols, violation{pos: lhs.Pos(),
				what: "accumulates into a non-integer outside the loop (order-dependent rounding)"})
			continue
		}
		// x = append(x, ...) collecting into an outer slice: excusable
		// only under //simlint:sorted.
		if i < len(as.Rhs) {
			if call, ok := ast.Unparen(as.Rhs[minInt(i, len(as.Rhs)-1)]).(*ast.CallExpr); ok && astcheck.IsBuiltin(info, call, "append") {
				viols = append(viols, violation{pos: lhs.Pos(),
					what:   "appends map entries to a slice declared outside the loop",
					append: info.ObjectOf(root)})
				continue
			}
		}
		viols = append(viols, violation{pos: lhs.Pos(),
			what: "writes state declared outside the loop (last writer depends on iteration order)"})
	}
	return viols
}

func classifyIncDec(pass *framework.Pass, st *ast.IncDecStmt, rng *ast.RangeStmt) (violation, bool) {
	info := pass.TypesInfo
	root := astcheck.RootIdent(st.X)
	if root == nil {
		return violation{pos: st.Pos(), what: "writes through a computed lvalue"}, true
	}
	if astcheck.DeclaredWithin(info, root, rng.Pos(), rng.End()) {
		return violation{}, false
	}
	if t := info.TypeOf(st.X); t != nil && astcheck.IsIntegerType(t) {
		return violation{}, false // counting is commutative
	}
	return violation{pos: st.Pos(), what: "accumulates into a non-integer outside the loop (order-dependent rounding)"}, true
}

// feedsSort reports whether obj (a slice collected inside rng) appears in
// a sort call after the loop within fd.
func feedsSort(pass *framework.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		fn := astcheck.CalleeFunc(info, call)
		if fn == nil {
			return true
		}
		pkg := astcheck.FuncPkgPath(fn)
		isSort := pkg == "sort" || pkg == "slices" || strings.HasPrefix(fn.Name(), "Sort")
		if !isSort {
			return true
		}
		for _, arg := range call.Args {
			if astcheck.UsesObject(info, arg, obj) {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
