// Suite-level test: the full simlint analyzer suite must run clean over
// the real module. This makes `go test ./...` itself enforce the
// invariants — CI's dedicated simlint job is the same check with nicer
// output.
package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis/chargedpath"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
	"repro/internal/analysis/nondeterminism"
	"repro/internal/analysis/seededrand"
	"repro/internal/analysis/zeroperturbation"
)

func TestSuiteCleanOnModule(t *testing.T) {
	root := moduleRoot(t)
	l := &load.Loader{Root: root}
	if err := l.Open(); err != nil {
		t.Fatalf("opening loader at %s: %v", root, err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	suite := []*framework.Analyzer{
		nondeterminism.Analyzer,
		zeroperturbation.Analyzer,
		seededrand.Analyzer,
		chargedpath.Analyzer,
	}
	diags, err := framework.NewRunner().RunAll(suite, pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s: %s [%s]", l.Fset().Position(d.Pos), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		t.Errorf("simlint suite reported %d finding(s) on the merged tree; fix or annotate them (see ARCHITECTURE.md, statically enforced invariants)", len(diags))
	}
}

// moduleRoot walks up from the test's working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
