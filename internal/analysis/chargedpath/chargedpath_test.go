package chargedpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chargedpath"
)

func TestChargedPath(t *testing.T) {
	analysistest.Run(t, "testdata/chargedpath.txtar", chargedpath.Analyzer)
}
