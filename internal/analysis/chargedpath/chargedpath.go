// Package chargedpath implements the simlint analyzer for pricing
// honesty: work done on the per-frame hot path against a priced structure
// must be charged. The flow-table and TIME_WAIT subsystems were
// hand-audited for this when they landed (every lookup, insert, reap and
// growth-rehash charges through cycles/memmodel); this analyzer encodes
// the audit so the next priced structure cannot silently skip it.
//
// Mechanics: every function in the deterministic set exports a fact
// summarizing whether it charges (calls into internal/cycles or
// internal/memmodel), whether it touches a priced structure (accesses a
// field of a type named in simlintcfg.PricedTypes), and which functions it
// statically calls. Packages are analyzed in dependency order, so when a
// package declaring a hot-path root (simlintcfg.HotPathRoots) is reached,
// the analyzer walks the static call graph downward from the root carrying
// a charged-yet? flag. Reaching a function that touches a priced structure
// with no charge at that function or anywhere above it on the path is a
// violation: silently unpriced hot-path work.
//
// The walk is static: calls through interfaces and function values are
// edges the graph cannot see, so coverage is honest-but-partial — exactly
// like the hand audits it replaces, but repeatable. A charge anywhere on
// one path covers the callee (the "same function or a caller" contract
// from the pricing PRs).
package chargedpath

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/astcheck"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/simlintcfg"
)

// Analyzer is the chargedpath analyzer.
var Analyzer = &framework.Analyzer{
	Name: "chargedpath",
	Doc: "hot-path functions touching priced structures must charge cycles/memmodel in the function or a caller\n\n" +
		"Walks the static call graph from the per-frame entry points (driver poll, softirq, demux, aggregate, endpoint).",
	Run: run,
}

// funcInfo is the per-function fact shared across packages.
type funcInfo struct {
	Charges bool          // calls into a pricing package directly
	Touches bool          // accesses a field of a priced type
	Calls   []*types.Func // static callees, declaration order
}

// AFact marks funcInfo as a framework fact.
func (*funcInfo) AFact() {}

func run(pass *framework.Pass) (interface{}, error) {
	if !simlintcfg.IsDeterministic(pass.ModulePath, pass.Pkg.Path()) {
		return nil, nil
	}
	pricedFields := pricedFieldOwners(pass)

	// Pass 1: summarize every function in this package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			pass.ExportObjectFact(obj, summarize(pass, fd, pricedFields))
		}
	}

	// Pass 2: walk from any hot-path roots this package declares.
	for _, rootName := range simlintcfg.RootNames(pass.ModulePath, pass.Pkg.Path()) {
		root := lookupRoot(pass.Pkg, rootName)
		if root == nil {
			pass.Reportf(pass.Files[0].Pos(),
				"simlint config names hot-path root %s.%s but it does not exist; update simlintcfg.HotPathRoots [chargedpath]",
				pass.Pkg.Name(), rootName)
			continue
		}
		w := &walker{pass: pass, seen: make(map[walkState]bool), rootName: rootName}
		w.walk(root, false)
	}
	return nil, nil
}

// pricedFieldOwners resolves this package's priced type names to their
// *types.Named objects.
func pricedFieldOwners(pass *framework.Pass) map[*types.TypeName]bool {
	owners := make(map[*types.TypeName]bool)
	for _, name := range simlintcfg.PricedTypeNames(pass.ModulePath, pass.Pkg.Path()) {
		if tn, ok := pass.Pkg.Scope().Lookup(name).(*types.TypeName); ok {
			owners[tn] = true
		}
	}
	return owners
}

// summarize computes one function's fact.
func summarize(pass *framework.Pass, fd *ast.FuncDecl, priced map[*types.TypeName]bool) *funcInfo {
	info := pass.TypesInfo
	fi := &funcInfo{}
	seenCallee := make(map[*types.Func]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn := astcheck.CalleeFunc(info, x)
			if fn == nil {
				return true
			}
			if simlintcfg.IsPricing(pass.ModulePath, astcheck.FuncPkgPath(fn)) {
				fi.Charges = true
				return true
			}
			if !seenCallee[fn] {
				seenCallee[fn] = true
				fi.Calls = append(fi.Calls, fn)
			}
		case *ast.SelectorExpr:
			if fi.Touches {
				return true
			}
			sel, ok := info.Selections[x]
			if !ok || sel.Kind() != types.FieldVal {
				return true
			}
			if owner := namedRecv(sel.Recv()); owner != nil && priced[owner.Obj()] {
				fi.Touches = true
			}
		}
		return true
	})
	// Methods on priced types touch their structure by definition even
	// when every access goes through helpers.
	if recv := receiverNamed(info, fd); recv != nil && priced[recv.Obj()] {
		fi.Touches = true
	}
	return fi
}

func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func receiverNamed(info *types.Info, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return nil
	}
	if tv, ok := info.Types[fd.Recv.List[0].Type]; ok {
		return namedRecv(tv.Type)
	}
	return nil
}

// lookupRoot resolves "Func" or "Type.Method" in pkg's scope.
func lookupRoot(pkg *types.Package, name string) *types.Func {
	if typeName, method, ok := strings.Cut(name, "."); ok {
		tn, okT := pkg.Scope().Lookup(typeName).(*types.TypeName)
		if !okT {
			return nil
		}
		named, okN := tn.Type().(*types.Named)
		if !okN {
			return nil
		}
		for m := range named.Methods() {
			if m.Name() == method {
				return m
			}
		}
		return nil
	}
	fn, _ := pkg.Scope().Lookup(name).(*types.Func)
	return fn
}

type walkState struct {
	fn      *types.Func
	charged bool
}

type walker struct {
	pass     *framework.Pass
	seen     map[walkState]bool
	rootName string
}

// walk visits fn with the accumulated charged flag and recurses into its
// static callees. Functions without facts (other modules, interfaces,
// exempt packages) end the walk.
func (w *walker) walk(fn *types.Func, charged bool) {
	st := walkState{fn, charged}
	if w.seen[st] {
		return
	}
	w.seen[st] = true
	var fi funcInfo
	if !w.pass.ImportObjectFact(fn, &fi) {
		return
	}
	if fi.Charges {
		charged = true
	}
	if fi.Touches && !charged {
		w.pass.Reportf(fn.Pos(),
			"%s touches a priced structure on the hot path from %s without a cycles/memmodel charge in this function or any caller on the path: unpriced per-frame work [chargedpath]",
			fn.Name(), w.rootName)
		// Report once, then treat as charged so one missing charge does
		// not cascade into every transitive callee.
		charged = true
	}
	for _, callee := range fi.Calls {
		w.walk(callee, charged)
	}
}
