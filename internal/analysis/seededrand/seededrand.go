// Package seededrand implements the simlint analyzer for randomness
// provenance: any PRNG a simulator package constructs must be seeded from
// configuration (a LossConfig.Seed-style value), never from host entropy
// or time. The deterministic loss injector set the pattern — per-link
// generators derived from LossConfig.Seed so runs replay and links never
// correlate — and this analyzer makes it a rule:
//
//   - crypto/rand must not be imported at all (host entropy by
//     definition);
//   - math/rand constructors (NewSource, NewPCG, NewChaCha8, and New with
//     an inline source) must take seeds that flow from configuration:
//     every leaf of the seed expression must be a constant, a
//     seed-carrying identifier or field (name containing "seed"), or a
//     call to a seed-derivation helper — time.Now().UnixNano() and
//     friends are rejected;
//   - draws from the process-global math/rand generator are the
//     nondeterminism analyzer's business and reported there.
//
// Hand-rolled counter-based generators (splitmix64/xorshift over a config
// seed, as in internal/sim/link.go) need no annotation: they are plain
// arithmetic and have no entropy source to misuse; the wall-clock and
// global-rand rules still cover their inputs.
package seededrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis/astcheck"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/simlintcfg"
)

// Analyzer is the seededrand analyzer.
var Analyzer = &framework.Analyzer{
	Name: "seededrand",
	Doc: "PRNGs in simulator packages must be seeded from config, never entropy or time\n\n" +
		"Rejects crypto/rand imports and math/rand constructors whose seed does not flow from a config seed.",
	Run: run,
}

// seedConstructors maps math/rand constructor names to which of their
// arguments are seeds. New's argument is a Source, checked structurally.
var seedConstructors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

func run(pass *framework.Pass) (interface{}, error) {
	if !simlintcfg.IsDeterministic(pass.ModulePath, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "crypto/rand" {
				pass.Reportf(imp.Pos(),
					"crypto/rand is host entropy; simulator randomness must derive from a config seed so runs replay bit-identically [seededrand]")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkConstructor(pass, call)
			return true
		})
	}
	return nil, nil
}

func checkConstructor(pass *framework.Pass, call *ast.CallExpr) {
	fn := astcheck.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	pkg := astcheck.FuncPkgPath(fn)
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return // method on an already-constructed generator
	}
	switch {
	case seedConstructors[fn.Name()]:
		for _, arg := range call.Args {
			reportNonSeedLeaves(pass, fn.Name(), arg)
		}
	case fn.Name() == "New":
		// rand.New(rand.NewSource(x)): the inner constructor call is
		// checked on its own visit. Anything else passed as the source —
		// an identifier, a selector — is accepted: its construction site
		// was checked where it happened.
	}
}

// reportNonSeedLeaves walks a seed expression and reports every leaf that
// is not provably configuration-derived. Arithmetic, conversions, and
// composition of seed-carrying values are all accepted; the goal is
// provenance, not purity.
func reportNonSeedLeaves(pass *framework.Pass, ctor string, e ast.Expr) {
	info := pass.TypesInfo
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		// Any constant subexpression is a fixed seed: deterministic.
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return
		}
		switch x := e.(type) {
		case *ast.BasicLit:
			return
		case *ast.BinaryExpr:
			walk(x.X)
			walk(x.Y)
			return
		case *ast.UnaryExpr:
			if x.Op == token.SUB || x.Op == token.XOR || x.Op == token.ADD {
				walk(x.X)
				return
			}
		case *ast.CallExpr:
			// Conversions (uint64(v)) recurse; seed-derivation helper
			// calls (names containing "seed") are accepted with their
			// arguments checked too.
			if len(x.Args) == 1 {
				if tv, ok := info.Types[x.Fun]; ok && tv.IsType() {
					walk(x.Args[0]) // conversion: uint64(v)
					return
				}
			}
			if fn := astcheck.CalleeFunc(info, x); fn != nil && carriesSeed(fn.Name()) {
				for _, a := range x.Args {
					walk(a)
				}
				return
			}
		case *ast.Ident:
			if carriesSeed(x.Name) {
				return
			}
		case *ast.SelectorExpr:
			if carriesSeed(x.Sel.Name) {
				return
			}
		}
		pass.Reportf(e.Pos(),
			"rand.%s seed depends on %s, which is not provably configuration-derived; thread a config seed (LossConfig.Seed-style, name containing \"seed\") through instead [seededrand]",
			ctor, describe(e))
	}
	walk(e)
}

// carriesSeed reports whether a name declares seed provenance.
func carriesSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// describe renders a short human label for a rejected seed leaf.
func describe(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return "identifier " + strconv.Quote(x.Name)
	case *ast.SelectorExpr:
		return "selector " + strconv.Quote(x.Sel.Name)
	case *ast.CallExpr:
		if fn, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			return "call " + strconv.Quote(fn.Sel.Name)
		}
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			return "call " + strconv.Quote(id.Name)
		}
		return "a call result"
	default:
		return "a non-seed expression"
	}
}
