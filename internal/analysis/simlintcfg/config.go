// Package simlintcfg names the package sets and domain vocabulary the
// simlint analyzers share, in one place: which packages must be
// deterministic, which command-line tools are exempt (and why), which
// packages constitute the pricing layer, which structures are priced, and
// where the per-frame hot path enters.
//
// Every scope decision is expressed as a module-relative path fragment
// ("internal/sim", "cmd/rxbench") and matched against the suffix of a
// package path after the module path, so analysistest fixtures under a
// fake module exercise exactly the production scoping logic.
package simlintcfg

import "strings"

// DeterministicPackages lists the module-relative packages whose execution
// must replay bit-identically from a StreamConfig: the simulator core and
// everything it is built from. Within these packages the nondeterminism,
// seededrand and chargedpath analyzers are active. The list deliberately
// names prefixes: "internal/sim" covers internal/sim and any future
// sub-packages.
var DeterministicPackages = []string{
	"internal/ackoff",
	"internal/aggregate",
	"internal/buf",
	"internal/checksum",
	"internal/core",
	"internal/cost",
	"internal/cycles",
	"internal/driver",
	"internal/ether",
	"internal/ipv4",
	"internal/memmodel",
	"internal/netstack",
	"internal/nic",
	"internal/packet",
	"internal/profile",
	"internal/rss",
	"internal/sim",
	"internal/softirq",
	"internal/steer",
	"internal/tcp",
	"internal/tcpwire",
	"internal/telemetry",
	"internal/xenvirt",
}

// WallClockExemptPackages lists command-line tools allowed to read the
// wall clock and host entropy: they wrap the simulator for humans
// (profiling flags, benchmark timing, trace file naming) and none of their
// wall-clock reads can flow into simulated state, which only ever advances
// through sim.Sim's virtual clock. The exemption-list test pins this list
// against the actual cmd/ directory so a new CLI must make an explicit
// choice.
var WallClockExemptPackages = []string{
	"cmd/rxbench",       // -cpuprofile/-memprofile wall timing, bench tables
	"cmd/rxprof",        // profiling flags
	"cmd/rxtrace",       // trace export timestamps
	"cmd/simlint",       // the linter itself (os/exec, file IO)
	"examples",          // quickstart programs, not simulator state
	"internal/analysis", // the analyzers read source trees, not sim state
}

// PricingPackages are the accounting layer: every cycle and memory charge
// flows through them. The zeroperturbation analyzer forbids the telemetry
// package from reaching them; the chargedpath analyzer treats any call
// into them as a charge.
var PricingPackages = []string{
	"internal/cycles",
	"internal/memmodel",
}

// TelemetryPackage is the observation layer bound by the PR 8
// zero-perturbation contract: it may read clocks (values handed to it) but
// must never schedule events, charge cycles or memory costs, or import the
// machinery that could.
const TelemetryPackage = "internal/telemetry"

// SchedulerFuncNames are method/function names that schedule simulator
// events. Calling one from telemetry code, or from inside an unordered map
// iteration, breaks replay determinism.
var SchedulerFuncNames = map[string]bool{
	"Schedule":      true,
	"ScheduleKeyed": true,
	"After":         true,
}

// PricedTypes names structures whose touches are priced through
// cycles/memmodel: module-relative package fragment → type names. A
// hot-path function that accesses fields of one of these must charge, or
// be called from something that charges (chargedpath analyzer).
var PricedTypes = map[string][]string{
	"internal/netstack":  {"FlowTable", "flowShard", "flowSlot", "timeWaitTable", "twShard", "twEntry"},
	"internal/aggregate": {"Engine"},
	"internal/tcp":       {"Endpoint"},
}

// HotPathRoots names the entry points of the per-frame receive path:
// module-relative package fragment → function or Type.Method names. The
// chargedpath analyzer walks the static call graph from these roots.
var HotPathRoots = map[string][]string{
	"internal/driver":    {"Driver.Poll"},
	"internal/netstack":  {"Stack.Input", "Stack.InputOn"},
	"internal/aggregate": {"Engine.Input"},
	"internal/tcp":       {"Endpoint.Input"},
	"internal/xenvirt":   {"Machine.ProcessRound"},
}

// SortedAnnotation is the escape hatch marker for map iterations whose
// collected results are sorted before use. It must be followed by a
// justification and the loop must provably feed a sort (see the
// nondeterminism analyzer).
const SortedAnnotation = "//simlint:sorted"

// Rel returns pkgPath relative to modulePath ("" for the module root
// package) and whether pkgPath belongs to the module.
func Rel(modulePath, pkgPath string) (string, bool) {
	if pkgPath == modulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(pkgPath, modulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

// matchFragment reports whether rel equals frag or lives under it.
func matchFragment(rel, frag string) bool {
	return rel == frag || strings.HasPrefix(rel, frag+"/")
}

// IsDeterministic reports whether pkgPath (under modulePath) is in the
// deterministic set.
func IsDeterministic(modulePath, pkgPath string) bool {
	rel, ok := Rel(modulePath, pkgPath)
	if !ok {
		return false
	}
	for _, e := range WallClockExemptPackages {
		if matchFragment(rel, e) {
			return false
		}
	}
	for _, d := range DeterministicPackages {
		if matchFragment(rel, d) {
			return true
		}
	}
	return false
}

// IsPricing reports whether pkgPath is part of the accounting layer.
func IsPricing(modulePath, pkgPath string) bool {
	rel, ok := Rel(modulePath, pkgPath)
	if !ok {
		return false
	}
	for _, p := range PricingPackages {
		if matchFragment(rel, p) {
			return true
		}
	}
	return false
}

// IsTelemetry reports whether pkgPath is the telemetry package (or a
// sub-package of it).
func IsTelemetry(modulePath, pkgPath string) bool {
	rel, ok := Rel(modulePath, pkgPath)
	if !ok {
		return false
	}
	return matchFragment(rel, TelemetryPackage)
}

// PricedTypeNames returns the priced type names for pkgPath, or nil.
func PricedTypeNames(modulePath, pkgPath string) []string {
	rel, ok := Rel(modulePath, pkgPath)
	if !ok {
		return nil
	}
	return PricedTypes[rel]
}

// RootNames returns the hot-path root names declared in pkgPath, or nil.
func RootNames(modulePath, pkgPath string) []string {
	rel, ok := Rel(modulePath, pkgPath)
	if !ok {
		return nil
	}
	return HotPathRoots[rel]
}
