package simlintcfg

import (
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestWallClockExemptionsMatchTree pins the exemption list against the
// tree: every cmd/* directory must appear (a new CLI makes an explicit
// determinism choice), and every cmd/*-shaped exemption must still exist
// (no stale entries hiding future violations).
func TestWallClockExemptionsMatchTree(t *testing.T) {
	root := moduleRoot(t)
	entries, err := os.ReadDir(filepath.Join(root, "cmd"))
	if err != nil {
		t.Fatalf("reading cmd/: %v", err)
	}
	inTree := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			inTree["cmd/"+e.Name()] = true
		}
	}
	exempt := make(map[string]bool)
	for _, e := range WallClockExemptPackages {
		exempt[e] = true
	}
	var missing, stale []string
	for d := range inTree {
		if !exempt[d] {
			missing = append(missing, d)
		}
	}
	for e := range exempt {
		if filepath.Dir(e) == "cmd" && !inTree[e] {
			stale = append(stale, e)
		}
	}
	sort.Strings(missing)
	sort.Strings(stale)
	for _, d := range missing {
		t.Errorf("%s exists but is not in WallClockExemptPackages: add it (with a why-comment) or put it under the deterministic rules", d)
	}
	for _, e := range stale {
		t.Errorf("WallClockExemptPackages lists %s but cmd/ has no such directory: remove the stale entry", e)
	}
}

// TestDeterministicSetMatchesTree checks the deterministic list against
// internal/: every listed fragment must exist, and every internal
// package directory must be covered by exactly one of the deterministic
// or exempt sets.
func TestDeterministicSetMatchesTree(t *testing.T) {
	root := moduleRoot(t)
	for _, d := range DeterministicPackages {
		if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(d))); err != nil {
			t.Errorf("DeterministicPackages lists %s but the directory is missing: %v", d, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatalf("reading internal/: %v", err)
	}
	module := "repro"
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		pkg := module + "/internal/" + e.Name()
		det := IsDeterministic(module, pkg)
		exempt := false
		for _, x := range WallClockExemptPackages {
			if matchFragment("internal/"+e.Name(), x) {
				exempt = true
			}
		}
		if !det && !exempt {
			t.Errorf("internal/%s is neither deterministic nor exempt: add it to one list in simlintcfg", e.Name())
		}
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
