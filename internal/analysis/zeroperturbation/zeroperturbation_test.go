package zeroperturbation_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/zeroperturbation"
)

func TestZeroPerturbation(t *testing.T) {
	analysistest.Run(t, "testdata/zeroperturbation.txtar", zeroperturbation.Analyzer)
}
