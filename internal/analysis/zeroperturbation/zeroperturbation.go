// Package zeroperturbation implements the simlint analyzer pinning the
// PR 8 observability contract statically: telemetry observes the
// simulation, it never participates in it. Runtime enforcement exists
// (TestTelemetryZeroPerturbation diffs 16 golden shapes off-vs-on), but it
// only catches a violation that one of those shapes happens to execute;
// this analyzer rejects the construct itself.
//
// Two scopes are checked:
//
//   - internal/telemetry may import nothing from this module (stdlib
//     only). The packages that could perturb a run — the event scheduler,
//     the cycles and memmodel accounting layers, machine state — are all
//     module-internal, so an empty internal import set is the strongest
//     statically checkable form of "reads clocks, never writes machine
//     state". Calls to scheduler-shaped methods (Schedule*, After) through
//     injected callbacks or interfaces are rejected too.
//
//   - Stamping call sites elsewhere: a function whose name marks it as a
//     telemetry stamping path (stamp*/Stamp* prefix) may read clocks and
//     write stamps but must not schedule events or charge through
//     cycles/memmodel — stamping must cost nothing and move nothing.
package zeroperturbation

import (
	"go/ast"
	"strconv"
	"strings"

	"repro/internal/analysis/astcheck"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/simlintcfg"
)

// Analyzer is the zeroperturbation analyzer.
var Analyzer = &framework.Analyzer{
	Name: "zeroperturbation",
	Doc: "telemetry must never schedule events, charge accounting, or reach machine state\n\n" +
		"Statically pins the contract runtime-tested by TestTelemetryZeroPerturbation.",
	Run: run,
}

func run(pass *framework.Pass) (interface{}, error) {
	if simlintcfg.IsTelemetry(pass.ModulePath, pass.Pkg.Path()) {
		checkTelemetryPackage(pass)
		return nil, nil
	}
	if simlintcfg.IsDeterministic(pass.ModulePath, pass.Pkg.Path()) {
		checkStampSites(pass)
	}
	return nil, nil
}

// checkTelemetryPackage rejects module-internal imports and scheduler
// calls inside the telemetry package.
func checkTelemetryPackage(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if rel, ok := simlintcfg.Rel(pass.ModulePath, path); ok && !simlintcfg.IsTelemetry(pass.ModulePath, path) {
				pass.Reportf(imp.Pos(),
					"telemetry imports %s: the zero-perturbation contract forbids telemetry from reaching simulator state, scheduling, or pricing (%s) [zeroperturbation]",
					rel, path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, bad := schedulerCall(pass, call); bad {
				pass.Reportf(call.Pos(),
					"telemetry calls %s: observation must never schedule simulator events [zeroperturbation]", name)
			}
			return true
		})
	}
}

// checkStampSites applies the no-schedule/no-charge rule to stamping
// functions in the wider deterministic set.
func checkStampSites(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isStampFunc(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, bad := schedulerCall(pass, call); bad {
					pass.Reportf(call.Pos(),
						"stamping function %s calls %s: a telemetry stamp must never schedule events [zeroperturbation]",
						fd.Name.Name, name)
				}
				if fn := astcheck.CalleeFunc(pass.TypesInfo, call); fn != nil &&
					simlintcfg.IsPricing(pass.ModulePath, astcheck.FuncPkgPath(fn)) {
					pass.Reportf(call.Pos(),
						"stamping function %s charges through %s.%s: observation must be free [zeroperturbation]",
						fd.Name.Name, fn.Pkg().Name(), fn.Name())
				}
				return true
			})
		}
	}
}

// schedulerCall reports whether call invokes a scheduler-shaped function
// or method (by name, so interface and callback indirection count too).
func schedulerCall(pass *framework.Pass, call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if simlintcfg.SchedulerFuncNames[fun.Sel.Name] {
			return fun.Sel.Name, true
		}
	case *ast.Ident:
		if simlintcfg.SchedulerFuncNames[fun.Name] {
			return fun.Name, true
		}
	}
	return "", false
}

// isStampFunc reports whether name marks a stamping call site.
func isStampFunc(name string) bool {
	return strings.HasPrefix(name, "stamp") || strings.HasPrefix(name, "Stamp")
}
