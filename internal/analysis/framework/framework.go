// Package framework is a minimal, dependency-free implementation of the
// golang.org/x/tools/go/analysis API surface that simlint's analyzers are
// written against: Analyzer, Pass, Diagnostic, and object facts.
//
// The build environment for this repository is hermetic — the module has no
// external requirements and the toolchain image carries no module cache — so
// the real x/tools packages cannot be fetched. Rather than give up static
// enforcement of the simulator's invariants, this package vendors the small
// subset of the API the suite needs, with the same field and method names.
// If the module ever grows a vendored x/tools, each analyzer ports by
// swapping this import for go/analysis; no analyzer logic changes.
//
// Deliberate deviations from x/tools, all driven by the offline loader in
// internal/analysis/load:
//
//   - Facts are held in a Runner-owned store shared by every pass of one
//     suite execution instead of being serialized between separate vet
//     processes. Object identity works across packages because the loader
//     typechecks the whole module under one token.FileSet and one package
//     cache.
//   - Requires/ResultOf dependency plumbing is omitted; the analyzers here
//     are independent.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, -run selection and
	// annotation text. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package. Diagnostics are delivered
	// through pass.Report; the first return value is unused (kept for
	// x/tools signature compatibility).
	Run func(pass *Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the typechecked syntax of one package
// plus the reporting and fact channels.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ModulePath is the path of the module under analysis (from go.mod).
	// Analyzers match package scopes against module-relative fragments,
	// so fixtures under any fake module path exercise the same logic as
	// the real tree.
	ModulePath string

	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)

	runner *Runner
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Fact is analyzer-private information attached to a types.Object,
// visible to later passes of the same analyzer in the same suite run.
type Fact interface{ AFact() }

// ExportObjectFact attaches fact to obj for later passes of this analyzer.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.runner.setFact(p.Analyzer, obj, fact)
}

// ImportObjectFact copies the fact previously exported for obj, if any,
// into *fact's pointee and reports whether one existed. fact must be a
// pointer of the same concrete type that was exported.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.runner.getFact(p.Analyzer, obj, fact)
}

// A Diagnostic is one finding, positioned in the loader's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled by the Runner
}
