package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
)

// A Package is one typechecked unit handed to the Runner. The load package
// produces these in dependency order, all sharing one FileSet and one
// types.Package cache, which is what makes cross-package facts work.
type Package struct {
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	ModulePath string
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
}

// A Runner executes analyzers over packages and collects diagnostics. It
// owns the fact store for one suite execution; run packages in dependency
// order so facts exported by a dependency are visible when its importers
// are analyzed.
type Runner struct {
	facts map[factKey]Fact
}

// NewRunner returns a Runner with an empty fact store.
func NewRunner() *Runner {
	return &Runner{facts: make(map[factKey]Fact)}
}

func (r *Runner) setFact(a *Analyzer, obj types.Object, fact Fact) {
	r.facts[factKey{a, obj}] = fact
}

func (r *Runner) getFact(a *Analyzer, obj types.Object, dst Fact) bool {
	fact, ok := r.facts[factKey{a, obj}]
	if !ok {
		return false
	}
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(fact)
	if dv.Kind() != reflect.Ptr || dv.Elem().Type() != sv.Elem().Type() {
		panic(fmt.Sprintf("framework: fact type mismatch: have %T, want %T", fact, dst))
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// Run applies one analyzer to one package and returns its diagnostics,
// each stamped with the analyzer name.
func (r *Runner) Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.Info,
		ModulePath: pkg.ModulePath,
		runner:     r,
	}
	pass.Report = func(d Diagnostic) {
		d.Analyzer = a.Name
		diags = append(diags, d)
	}
	if _, err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
	}
	return diags, nil
}

// RunAll applies every analyzer to every package (packages must already be
// in dependency order) and returns all diagnostics sorted by position.
func (r *Runner) RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			diags, err := r.Run(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	SortDiagnostics(all, pkgs)
	return all, nil
}

// SortDiagnostics orders diagnostics by file position, then analyzer name,
// then message, using the FileSet shared by pkgs.
func SortDiagnostics(diags []Diagnostic, pkgs []*Package) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// Position resolves a diagnostic position against the given FileSet.
func Position(fset *token.FileSet, pos token.Pos) token.Position {
	return fset.Position(pos)
}

// File returns the *ast.File of pass.Files containing pos, or nil.
func (p *Pass) File(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}
