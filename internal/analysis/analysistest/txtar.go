package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// A txtarFile is one file of a txtar archive.
type txtarFile struct {
	name string
	data string
}

// parseTxtar implements the txtar format used by x/tools fixtures: an
// optional comment, then a sequence of "-- name --" lines each followed by
// the file's contents.
func parseTxtar(data string) ([]txtarFile, error) {
	var files []txtarFile
	var cur *txtarFile
	for _, line := range strings.SplitAfter(data, "\n") {
		trimmed := strings.TrimSuffix(strings.TrimSuffix(line, "\n"), "\r")
		if name, ok := txtarMarker(trimmed); ok {
			files = append(files, txtarFile{name: name})
			cur = &files[len(files)-1]
			continue
		}
		if cur != nil {
			cur.data += line
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("txtar: no file markers found")
	}
	return files, nil
}

// txtarMarker parses a "-- name --" line.
func txtarMarker(line string) (string, bool) {
	if !strings.HasPrefix(line, "-- ") || !strings.HasSuffix(line, " --") {
		return "", false
	}
	name := strings.TrimSpace(line[3 : len(line)-3])
	return name, name != ""
}

// extractTxtar writes the archive's files under dir.
func extractTxtar(archive, dir string) error {
	files, err := parseTxtar(archive)
	if err != nil {
		return err
	}
	for _, f := range files {
		path := filepath.Join(dir, filepath.FromSlash(f.name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(path, []byte(f.data), 0o644); err != nil {
			return err
		}
	}
	return nil
}
