// Package analysistest runs simlint analyzers over txtar fixture packages
// and checks reported diagnostics against // want annotations, mirroring
// the x/tools analysistest contract on top of the vendored-minimal
// framework.
//
// A fixture is a txtar archive whose member paths are module-relative
// ("internal/sim/a.go"); the harness extracts it under a temp module root,
// typechecks it with the same offline loader the real suite uses, runs the
// analyzers over every package in dependency order, and matches findings
// line-by-line:
//
//	s.Schedule(at, nil) // want `schedules events`
//
// Each want pattern is a regexp that must match a diagnostic reported on
// that line, every pattern must be satisfied, and no unmatched diagnostics
// may remain. Fixtures declare any helper packages they need (stub
// internal/cycles, fake internal/sim) inside the archive — package-set
// scoping matches on module-relative fragments, so stubs exercise exactly
// the production scoping logic.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/load"
)

// DefaultModulePath is the fake module path fixtures load under. It is
// deliberately not the real module path: scoping must work by fragment,
// not by hard-coded module name.
const DefaultModulePath = "simlint.example/fixture"

// Run extracts the txtar archive at archivePath, loads every package in
// it, applies the analyzers, and reports mismatches between diagnostics
// and // want annotations as test errors.
func Run(t *testing.T, archivePath string, analyzers ...*framework.Analyzer) {
	t.Helper()
	data, err := os.ReadFile(archivePath)
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	RunArchive(t, string(data), analyzers...)
}

// RunArchive is Run for an in-memory archive.
func RunArchive(t *testing.T, archive string, analyzers ...*framework.Analyzer) {
	t.Helper()
	root := t.TempDir()
	if err := extractTxtar(archive, root); err != nil {
		t.Fatalf("extracting fixture: %v", err)
	}

	l := &load.Loader{Root: root, ModulePath: DefaultModulePath}
	if err := l.Open(); err != nil {
		t.Fatalf("opening loader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("loading fixture packages: %v", err)
	}
	diags, err := framework.NewRunner().RunAll(analyzers, pkgs)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	wants := collectWants(t, archive)
	checkDiagnostics(t, l.Fset(), root, diags, wants)
}

// want is one expectation: a regexp bound to file:line.
type want struct {
	file    string // module-relative, slash-separated
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

// collectWants parses // want annotations out of the archive source.
func collectWants(t *testing.T, archive string) []*want {
	t.Helper()
	files, err := parseTxtar(archive)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	var wants []*want
	for _, f := range files {
		if !strings.HasSuffix(f.name, ".go") {
			continue
		}
		for i, line := range strings.Split(f.data, "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			patterns, err := splitWantPatterns(m[1])
			if err != nil {
				t.Fatalf("%s:%d: %v", f.name, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", f.name, i+1, p, err)
				}
				wants = append(wants, &want{file: f.name, line: i + 1, pattern: re})
			}
		}
	}
	return wants
}

// splitWantPatterns parses the backquoted patterns of one want comment:
// `a` `b` ...
func splitWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '`' {
			return nil, fmt.Errorf("want patterns must be backquoted: %q", s)
		}
		end := strings.IndexByte(s[1:], '`')
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern: %q", s)
		}
		out = append(out, s[1:1+end])
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment with no patterns")
	}
	return out, nil
}

// checkDiagnostics matches findings against expectations both ways.
func checkDiagnostics(t *testing.T, fset *token.FileSet, root string, diags []framework.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		rel := strings.TrimPrefix(strings.TrimPrefix(pos.Filename, root), string(os.PathSeparator))
		rel = strings.ReplaceAll(rel, string(os.PathSeparator), "/")
		matched := false
		for _, w := range wants {
			if w.matched || w.file != rel || w.line != pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s [%s]", rel, pos.Line, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic matched want %q at %s:%d", w.pattern, w.file, w.line)
		}
	}
}
