// Package load typechecks this module's packages without the go/packages
// machinery, so the simlint suite runs in hermetic environments (no module
// cache, no network, no GOPATH layout).
//
// The loader parses each package directory with go/parser, typechecks it
// with go/types, and resolves imports two ways: paths inside the module map
// to directories under the module root, everything else (the standard
// library) goes through the compiler's source importer, which typechecks
// GOROOT sources directly. One FileSet and one package cache span the whole
// load, so types.Object identities are stable across packages — the
// property the framework's fact store relies on.
//
// Test files (_test.go) are intentionally excluded: the simulator's
// determinism invariants govern the machinery under test, while tests
// themselves may freely iterate maps or read wall-clock time. Build
// constraints are honored with the default tag set (so e.g. the -race
// variants of internal/sim are skipped, matching a plain `go build`).
package load

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// A Loader typechecks packages of one module.
type Loader struct {
	// Root is the absolute path of the module root (the directory holding
	// go.mod).
	Root string
	// ModulePath is the module's import path. If empty, Open reads it
	// from go.mod.
	ModulePath string

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*pkgEntry
	loading map[string]bool
	order   []string // completed loads, dependency order
}

type pkgEntry struct {
	types *types.Package
	files []*ast.File
	info  *types.Info
}

var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Open prepares the loader: it resolves the module path from go.mod when
// unset and initializes the import machinery.
func (l *Loader) Open() error {
	if l.ModulePath == "" {
		data, err := os.ReadFile(filepath.Join(l.Root, "go.mod"))
		if err != nil {
			return fmt.Errorf("load: reading go.mod: %w", err)
		}
		m := moduleRe.FindSubmatch(data)
		if m == nil {
			return fmt.Errorf("load: no module directive in %s/go.mod", l.Root)
		}
		l.ModulePath = string(m[1])
	}
	l.fset = token.NewFileSet()
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)
	l.pkgs = make(map[string]*pkgEntry)
	l.loading = make(map[string]bool)
	return nil
}

// Fset returns the FileSet shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load from
// the module tree, anything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if rel, ok := l.moduleRel(path); ok {
		e, err := l.loadDir(path, filepath.Join(l.Root, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return e.types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// moduleRel reports whether path names a package of this module and, if
// so, its slash-separated path relative to the module root ("" for the
// module root package itself).
func (l *Loader) moduleRel(path string) (string, bool) {
	if path == l.ModulePath {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return rest, true
	}
	return "", false
}

func (l *Loader) loadDir(pkgPath, dir string) (*pkgEntry, error) {
	if e, ok := l.pkgs[pkgPath]; ok {
		return e, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("load: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", pkgPath, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: typechecking %s: %w", pkgPath, err)
	}
	e := &pkgEntry{types: tpkg, files: files, info: info}
	l.pkgs[pkgPath] = e
	l.order = append(l.order, pkgPath)
	return e, nil
}

// LoadAll typechecks every package under the module root (the "./..."
// pattern) and returns them in dependency order: every package appears
// after all module-internal packages it imports. Directories named
// testdata, hidden directories, and directories with no non-test Go files
// are skipped.
func (l *Loader) LoadAll() ([]*framework.Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.Root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return l.LoadDirs(dirs)
}

// LoadDirs typechecks the packages rooted at the given directories (which
// must live under Root) and returns all packages loaded — requested ones
// plus module-internal dependencies — in dependency order.
func (l *Loader) LoadDirs(dirs []string) ([]*framework.Package, error) {
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.Root, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModulePath
		if rel != "." {
			pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.loadDir(pkgPath, dir); err != nil {
			var noGo *build.NoGoError
			if errors.As(err, &noGo) {
				continue // directory without compilable Go files
			}
			return nil, err
		}
	}
	out := make([]*framework.Package, 0, len(l.order))
	for _, path := range l.order {
		e := l.pkgs[path]
		out = append(out, &framework.Package{
			Fset:       l.fset,
			Files:      e.files,
			Types:      e.types,
			Info:       e.info,
			ModulePath: l.ModulePath,
		})
	}
	return out, nil
}
