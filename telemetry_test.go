package repro

import (
	"reflect"
	"testing"
)

// TestTelemetryZeroPerturbation pins the observability contract: telemetry
// reads the clock, it never schedules, so enabling it must not change any
// other result field — for every golden workload shape grown so far, the
// telemetry-on run stripped of its Latency report is bit-identical to the
// telemetry-off run. This is what makes the histograms trustworthy: they
// describe the same execution the goldens locked, not a perturbed one.
func TestTelemetryZeroPerturbation(t *testing.T) {
	for name, cfg := range parDetShapes() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.DurationNs = 20_000_000
			cfg.WarmupNs = 10_000_000

			off, err := RunStream(cfg)
			if err != nil {
				t.Fatalf("telemetry off: %v", err)
			}
			oncfg := cfg
			oncfg.Telemetry = TelemetryConfig{Latency: true, Spans: true}
			on, err := RunStream(oncfg)
			if err != nil {
				t.Fatalf("telemetry on: %v", err)
			}
			if !on.Latency.Enabled || on.Latency.E2E.Count == 0 {
				t.Errorf("telemetry on recorded nothing: %+v", on.Latency)
			}
			// The RPC shapes force Latency on even in the "off" run; strip
			// the report from both sides so the comparison covers every
			// other field.
			off.Latency, on.Latency = LatencyReport{}, LatencyReport{}
			if !reflect.DeepEqual(off, on) {
				t.Errorf("telemetry perturbed the run:\n  off: %+v\n  on:  %+v", off, on)
			}
		})
	}
}

// TestTraceParallelDeterminism is the trace-merge invariant: serial and
// ParallelScheduler runs must produce identical span streams and identical
// latency histograms, not just identical aggregate results. Per-lane
// recorders merge by (start, track, name, duration), which is a total
// order over the spans a deterministic schedule emits. Run under -race
// this also proves the recorders share no hidden state across lanes.
func TestTraceParallelDeterminism(t *testing.T) {
	shapes := map[string]StreamConfig{}

	stream := DefaultStreamConfig(SystemNativeSMP, OptFull)
	stream.NICs = 4
	stream.Queues = 4
	stream.Connections = 32
	shapes["stream/4q"] = stream

	rpc := DefaultStreamConfig(SystemNativeSMP, OptFull)
	rpc.NICs = 2
	rpc.Queues = 2
	rpc.Connections = 16
	rpc.RPC = RPCConfig{Enabled: true}
	shapes["rpc/incast"] = rpc

	for name, cfg := range shapes {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.DurationNs = 20_000_000
			cfg.WarmupNs = 10_000_000
			cfg.Telemetry = TelemetryConfig{Latency: true, Spans: true}

			run := func(parallel bool) (StreamResult, []Span) {
				c := cfg
				c.ParallelScheduler = parallel
				var spans []Span
				c.Telemetry.SpanSink = func(s []Span) { spans = s }
				res, err := RunStream(c)
				if err != nil {
					t.Fatalf("parallel=%v: %v", parallel, err)
				}
				return res, spans
			}
			serial, sspans := run(false)
			par, pspans := run(true)

			if len(sspans) == 0 {
				t.Fatal("serial run emitted no spans")
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("results diverge:\n  serial:   %+v\n  parallel: %+v", serial, par)
			}
			if !reflect.DeepEqual(sspans, pspans) {
				t.Errorf("span streams diverge: serial %d spans, parallel %d spans",
					len(sspans), len(pspans))
			}
		})
	}
}

// TestRPCIncastTailGrowsWithFanIn checks the incast workload measures what
// it claims: synchronized response bursts over a shared wire queue the
// last message behind fan-in−1 others, so the RTT tail must rise with
// fan-in — on the native path and across the Xen paravirtual path.
func TestRPCIncastTailGrowsWithFanIn(t *testing.T) {
	for _, sys := range []SystemKind{SystemNativeUP, SystemXen} {
		sys := sys
		t.Run(sys.String(), func(t *testing.T) {
			t.Parallel()
			p99 := map[int]uint64{}
			for _, fanin := range []int{4, 32} {
				cfg := DefaultStreamConfig(sys, OptFull)
				cfg.NICs = 1
				cfg.Connections = fanin
				cfg.RPC = RPCConfig{Enabled: true}
				cfg.DurationNs = 30_000_000
				cfg.WarmupNs = 10_000_000
				res, err := RunStream(cfg)
				if err != nil {
					t.Fatalf("fan-in %d: %v", fanin, err)
				}
				if res.RPCRounds == 0 {
					t.Fatalf("fan-in %d: no bursts completed", fanin)
				}
				lat := res.Latency
				if !lat.Enabled || lat.RTT.Count == 0 {
					t.Fatalf("fan-in %d: no RTT samples: %+v", fanin, lat)
				}
				if lat.RTT.P50Ns == 0 || lat.RTT.P99Ns < lat.RTT.P50Ns {
					t.Errorf("fan-in %d: degenerate RTT summary: %+v", fanin, lat.RTT)
				}
				if lat.E2E.Count == 0 {
					t.Errorf("fan-in %d: no per-message e2e samples", fanin)
				}
				p99[fanin] = lat.RTT.P99Ns
			}
			if p99[32] <= p99[4] {
				t.Errorf("incast p99 did not grow with fan-in: 4→%dns, 32→%dns",
					p99[4], p99[32])
			}
		})
	}
}

// TestStageResidencyConsistency cross-checks the stage taxonomy against
// the cycle accounting: the five stage residencies partition the
// end-to-end latency exactly (same counts, sums add up), and the mean
// in-machine residency is at least commensurate with the cycles the cost
// model charged per host packet — a packet cannot leave the machine
// faster than its own processing was priced.
func TestStageResidencyConsistency(t *testing.T) {
	cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
	cfg.DurationNs = 20_000_000
	cfg.WarmupNs = 10_000_000
	cfg.Telemetry = TelemetryConfig{Latency: true}
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lat := res.Latency
	if !lat.Enabled || lat.E2E.Count == 0 {
		t.Fatalf("no latency samples: %+v", lat)
	}

	var stageSum, inMachineSum uint64
	for _, s := range lat.Stages {
		stageSum += s.SumNs
		if s.Stage != "wire" {
			inMachineSum += s.SumNs
		}
		if s.Count != lat.E2E.Count {
			t.Errorf("stage %s count %d != e2e count %d", s.Stage, s.Count, lat.E2E.Count)
		}
	}
	if stageSum != lat.E2E.SumNs {
		t.Errorf("stage residencies do not partition e2e: stages sum %dns, e2e sum %dns",
			stageSum, lat.E2E.SumNs)
	}

	// Charged processing time per host packet, in ns: the delivered
	// message spent at least this long resident (typically far more — ring
	// wait and aggregation windows dominate). Allow 2x slack for charges
	// landing after the app-read stamp (ACK transmit, round bookkeeping).
	perPacketNs := res.CyclesPerPacket * res.AggFactor / NativeUP().ClockHz * 1e9
	meanResidency := float64(inMachineSum) / float64(lat.E2E.Count)
	if meanResidency < perPacketNs/2 {
		t.Errorf("mean in-machine residency %.0fns below half the charged per-packet time %.0fns",
			meanResidency, perPacketNs)
	}
}
