package repro

import (
	"reflect"
	"testing"
)

// parDetShapes enumerates one representative config per golden workload
// shape grown so far: the single-queue regression lock, RSS multi-queue
// scaling, flow churn, dynamic steering, the reorder fault injector, the
// restart storm, connection-scale demux (both flow-table layouts), wire
// corruption, and the Xen paravirtual path. Steering and Xen exercise the
// documented serial fallback — ParallelScheduler must be a no-op there,
// not an error and not a divergence.
func parDetShapes() map[string]StreamConfig {
	shapes := map[string]StreamConfig{}

	for _, sys := range []SystemKind{SystemNativeUP, SystemNativeSMP, SystemXen} {
		for _, opt := range []OptLevel{OptNone, OptFull} {
			cfg := DefaultStreamConfig(sys, opt)
			cfg.Queues = 1
			shapes["n1/"+sys.String()+"/"+opt.String()] = cfg
		}
	}

	rss := DefaultStreamConfig(SystemNativeUP, OptNone)
	rss.NICs = 8
	rss.Queues = 4
	rss.Connections = 64
	rss.FlowSkew = 1.1
	shapes["rss/8nic-4q"] = rss

	churn := DefaultStreamConfig(SystemNativeSMP, OptFull)
	churn.NICs = 8
	churn.Queues = 4
	churn.Connections = 200
	churn.FlowSkew = 1.2
	churn.ChurnIntervalNs = 2_000_000
	shapes["churn/200flow"] = churn

	steer := DefaultStreamConfig(SystemNativeUP, OptFull)
	steer.NICs = 8
	steer.Queues = 4
	steer.Connections = 200
	steer.FlowSkew = 1.2
	steer.Steering = SteerConfig{Enabled: true, ARFS: true}
	shapes["steer/fallback"] = steer

	reorder := DefaultStreamConfig(SystemNativeSMP, OptAggregation)
	reorder.Queues = 2
	reorder.Connections = 12
	reorder.ReorderWindow = 8
	reorder.Reorder = ReorderConfig{OneIn: 7, Distance: 3}
	shapes["reorder/window8"] = reorder

	storm := DefaultStreamConfig(SystemNativeSMP, OptFull)
	storm.Queues = 4
	storm.Connections = 24
	storm.RestartStorm = RestartStormConfig{AtNs: 20_000_000, PrefillTimeWait: 5000}
	storm.TimeWaitReuse = true
	storm.MaxTimeWaitBuckets = 4096
	shapes["storm/reuse"] = storm

	for name, layout := range map[string]FlowLayout{
		"open": LayoutOpenAddressed, "map": LayoutSeedMap,
	} {
		cs := DefaultStreamConfig(SystemNativeSMP, OptFull)
		cs.Queues = 4
		cs.Connections = 64
		cs.RegisteredFlows = 50_000
		cs.FlowLayout = layout
		shapes["connscale/"+name] = cs
	}

	corrupt := DefaultStreamConfig(SystemNativeUP, OptFull)
	corrupt.CorruptOneIn = 900
	shapes["corrupt/retransmit"] = corrupt

	loss := DefaultStreamConfig(SystemNativeUP, OptFull)
	loss.Loss = LossConfig{OneIn: 400, Seed: 3}
	loss.SACK = true
	shapes["loss/uniform-sack"] = loss

	burst := DefaultStreamConfig(SystemNativeSMP, OptFull)
	burst.Queues = 2
	burst.Connections = 8
	burst.Loss = LossConfig{BurstRate: 0.01, BurstLen: 4}
	shapes["loss/burst-reno"] = burst

	xen := DefaultStreamConfig(SystemXen, OptFull)
	xen.Queues = 2
	xen.Connections = 16
	shapes["xen/fallback-2q"] = xen

	rpc := DefaultStreamConfig(SystemNativeSMP, OptFull)
	rpc.NICs = 2
	rpc.Queues = 2
	rpc.Connections = 16
	rpc.RPC = RPCConfig{Enabled: true}
	shapes["rpc/incast-2q"] = rpc

	return shapes
}

// TestParallelSchedulerDeterminism is the tentpole's contract: for every
// golden workload shape, ParallelScheduler=true must produce a
// StreamResult that is field-for-field identical to the serial run — not
// within tolerance, identical, down to float bit patterns and per-CPU
// meter splits. Run under -race this also proves the lane partitioning
// has no hidden shared state.
func TestParallelSchedulerDeterminism(t *testing.T) {
	for name, cfg := range parDetShapes() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg.DurationNs = 30_000_000
			cfg.WarmupNs = 15_000_000

			serial, err := RunStream(cfg)
			if err != nil {
				t.Fatalf("serial: %v", err)
			}
			pcfg := cfg
			pcfg.ParallelScheduler = true
			par, err := RunStream(pcfg)
			if err != nil {
				t.Fatalf("parallel: %v", err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("serial vs parallel diverge:\n  serial:   %+v\n  parallel: %+v", serial, par)
			}
		})
	}
}
