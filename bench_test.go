// Benchmarks regenerating every table and figure of the paper's evaluation
// (§5). Each benchmark runs the corresponding experiment and reports the
// figures' headline quantities as custom metrics; the first iteration also
// prints the paper-style table. Absolute wall-clock ns/op measures the
// simulator, not the system under test — the interesting outputs are the
// Mb/s, cycles/packet and req/s metrics.
//
// Run everything:
//
//	go test -bench=. -benchmem
package repro

import (
	"fmt"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/profile"
)

// benchStream shortens runs so each bench iteration stays ~0.1-0.5 s.
func benchStream(b *testing.B, cfg StreamConfig) StreamResult {
	b.Helper()
	cfg.DurationNs = 50_000_000
	cfg.WarmupNs = 25_000_000
	res, err := RunStream(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkFig1_PrefetchImpact regenerates Figure 1: overhead shares on the
// 3.8 GHz uniprocessor under None/Partial/Full prefetching.
func BenchmarkFig1_PrefetchImpact(b *testing.B) {
	groups := profile.StandardShareGroups()
	for i := 0; i < b.N; i++ {
		var rows []string
		var per [][]float64
		for _, mode := range []memmodel.PrefetchMode{
			memmodel.PrefetchNone, memmodel.PrefetchPartial, memmodel.PrefetchFull,
		} {
			p := NativeUP38()
			p.Mem.Mode = mode
			cfg := DefaultStreamConfig(SystemNativeUP, OptNone)
			cfg.NICs = 1
			cfg.Params = &p
			res := benchStream(b, cfg)
			shares := profile.ShareLine(res.Breakdown, groups)
			rows = append(rows, mode.String())
			per = append(per, shares)
			b.ReportMetric(shares[0], "pct_per_byte_"+mode.String())
		}
		if i == 0 {
			fmt.Print(profile.SharesTable("Figure 1 (paper: per-byte 52% -> 14%, per-packet 37% -> ~70%)",
				rows, per, groups))
		}
	}
}

// BenchmarkFig2_SystemsComparison regenerates Figure 2: per-byte vs
// per-packet shares for UP, SMP and Xen with full prefetching.
func BenchmarkFig2_SystemsComparison(b *testing.B) {
	groups := profile.StandardShareGroups()
	for i := 0; i < b.N; i++ {
		var rows []string
		var per [][]float64
		for _, sys := range []SystemKind{SystemNativeUP, SystemNativeSMP, SystemXen} {
			res := benchStream(b, DefaultStreamConfig(sys, OptNone))
			rows = append(rows, sys.String())
			per = append(per, profile.ShareLine(res.Breakdown, groups))
		}
		if i == 0 {
			fmt.Print(profile.SharesTable("Figure 2 (paper: per-packet dominates everywhere)",
				rows, per, groups))
		}
	}
}

// BenchmarkFig3_UPBreakdown regenerates Figure 3: the uniprocessor
// cycles-per-packet breakdown.
func BenchmarkFig3_UPBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchStream(b, DefaultStreamConfig(SystemNativeUP, OptNone))
		b.ReportMetric(res.CyclesPerPacket, "cycles/pkt")
		if i == 0 {
			fmt.Print(FormatBreakdown(
				"Figure 3 (paper shares: per-byte 17%, rx+tx 21%, buffer+non-proto 25%, driver 21%)",
				res.Breakdown))
		}
	}
}

// BenchmarkFig4_SMPBreakdown regenerates Figure 4: UP vs SMP breakdowns
// (rx +62%, tx +40% from locking).
func BenchmarkFig4_SMPBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		up := benchStream(b, DefaultStreamConfig(SystemNativeUP, OptNone))
		smp := benchStream(b, DefaultStreamConfig(SystemNativeSMP, OptNone))
		b.ReportMetric(smp.Breakdown.Get(1)/up.Breakdown.Get(1), "rx_ratio")
		if i == 0 {
			fmt.Print(profile.Comparison(
				"Figure 4 (paper: rx +62%, tx +40%, buffer/copy unchanged)",
				"UP", "SMP", up.Breakdown, smp.Breakdown, profile.NativeCategories))
		}
	}
}

// BenchmarkFig6_XenBreakdown regenerates Figure 6: the virtualized
// breakdown (per-packet 56%, per-byte 14%, TCP itself only 10%).
func BenchmarkFig6_XenBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchStream(b, DefaultStreamConfig(SystemXen, OptNone))
		b.ReportMetric(res.CyclesPerPacket, "cycles/pkt")
		if i == 0 {
			fmt.Print(FormatXenBreakdown(
				"Figure 6 (paper: virt per-packet 56%, per-byte 14%, TCP rx+tx 10%)",
				res.Breakdown))
		}
	}
}

// BenchmarkFig7_OverallThroughput regenerates Figure 7: Original vs RA-only
// vs Optimized throughput for the three systems.
func BenchmarkFig7_OverallThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("Figure 7 (paper: UP 3452->4660, SMP 2988->4660, Xen 1088->1877 Mb/s)")
		}
		for _, sys := range []SystemKind{SystemNativeUP, SystemNativeSMP, SystemXen} {
			orig := benchStream(b, DefaultStreamConfig(sys, OptNone))
			ra := benchStream(b, DefaultStreamConfig(sys, OptAggregation))
			opt := benchStream(b, DefaultStreamConfig(sys, OptFull))
			b.ReportMetric(orig.ThroughputMbps, fmt.Sprintf("Mbps_orig_%d", int(sys)))
			b.ReportMetric(opt.ThroughputMbps, fmt.Sprintf("Mbps_opt_%d", int(sys)))
			if i == 0 {
				fmt.Printf("  %-10s original %5.0f | RA only %5.0f (%+3.0f%%) | optimized %5.0f (%+3.0f%%) at %2.0f%% CPU\n",
					sys, orig.ThroughputMbps,
					ra.ThroughputMbps, (ra.ThroughputMbps/orig.ThroughputMbps-1)*100,
					opt.ThroughputMbps, (opt.ThroughputMbps/orig.ThroughputMbps-1)*100,
					opt.CPUUtil*100)
			}
		}
	}
}

// figOptBreakdownBench is the shared shape of Figures 8-10.
func figOptBreakdownBench(b *testing.B, sys SystemKind, title string, xen bool) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		orig := benchStream(b, DefaultStreamConfig(sys, OptNone))
		opt := benchStream(b, DefaultStreamConfig(sys, OptFull))
		b.ReportMetric(orig.CyclesPerPacket/opt.CyclesPerPacket, "total_reduction_x")
		b.ReportMetric(opt.AggFactor, "agg_factor")
		if i == 0 {
			fmt.Print(FormatComparison(title, orig.Breakdown, opt.Breakdown, xen))
		}
	}
}

// BenchmarkFig8_UPOptimizedBreakdown regenerates Figure 8 (paper: the four
// per-packet categories fall 4.3x; aggr costs ~789 cycles/packet; the
// driver sheds ~681).
func BenchmarkFig8_UPOptimizedBreakdown(b *testing.B) {
	figOptBreakdownBench(b, SystemNativeUP,
		"Figure 8 (paper: per-packet categories ÷4.3, aggr ~789 cycles/pkt)", false)
}

// BenchmarkFig9_SMPOptimizedBreakdown regenerates Figure 9 (paper: 5.5x —
// the lock overhead scales down with the packet count).
func BenchmarkFig9_SMPOptimizedBreakdown(b *testing.B) {
	figOptBreakdownBench(b, SystemNativeSMP,
		"Figure 9 (paper: per-packet categories ÷5.5)", false)
}

// BenchmarkFig10_XenOptimizedBreakdown regenerates Figure 10 (paper: virt
// per-packet categories ÷3.7; netfront/netback fall less — per-fragment
// costs remain).
func BenchmarkFig10_XenOptimizedBreakdown(b *testing.B) {
	figOptBreakdownBench(b, SystemXen,
		"Figure 10 (paper: virt per-packet categories ÷3.7)", true)
}

// BenchmarkFig11_AggregationLimitSweep regenerates Figure 11: CPU cycles
// per packet as a function of the Aggregation Limit (x + y/k shape, knee
// well before the paper's chosen 20).
func BenchmarkFig11_AggregationLimitSweep(b *testing.B) {
	limits := []int{1, 2, 3, 5, 8, 10, 15, 20, 25, 30, 35}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("Figure 11 (paper: steep drop then flat; limit 20 chosen)")
			fmt.Printf("  %-6s %14s %6s\n", "limit", "cycles/packet", "agg")
		}
		for _, lim := range limits {
			cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
			cfg.AggLimit = lim
			res := benchStream(b, cfg)
			if lim == 1 || lim == 20 {
				b.ReportMetric(res.CyclesPerPacket, fmt.Sprintf("cycles_limit%d", lim))
			}
			if i == 0 {
				fmt.Printf("  %-6d %14.0f %6.1f\n", lim, res.CyclesPerPacket, res.AggFactor)
			}
		}
	}
}

// BenchmarkFig12_Scalability regenerates Figure 12: throughput vs number of
// concurrent connections on the SMP system.
func BenchmarkFig12_Scalability(b *testing.B) {
	conns := []int{5, 25, 100, 400}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("Figure 12 (paper: optimized stays >=40% ahead through 400 connections)")
			fmt.Printf("  %-8s %10s %10s %7s\n", "conns", "Original", "Optimized", "gain")
		}
		for _, c := range conns {
			base := DefaultStreamConfig(SystemNativeSMP, OptNone)
			base.Connections = c
			orig := benchStream(b, base)
			optCfg := DefaultStreamConfig(SystemNativeSMP, OptFull)
			optCfg.Connections = c
			opt := benchStream(b, optCfg)
			if c == 400 {
				b.ReportMetric(opt.ThroughputMbps/orig.ThroughputMbps, "gain_at_400_x")
			}
			if i == 0 {
				fmt.Printf("  %-8d %10.0f %10.0f %+6.0f%%\n", c,
					orig.ThroughputMbps, opt.ThroughputMbps,
					(opt.ThroughputMbps/orig.ThroughputMbps-1)*100)
			}
		}
	}
}

// BenchmarkTable1_RequestResponse regenerates Table 1: netperf-style
// request/response rates with and without the optimizations.
func BenchmarkTable1_RequestResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("Table 1 (paper: UP 7874/7894, SMP 7970/7985, Xen 6965/6953 req/s)")
		}
		for _, sys := range []SystemKind{SystemNativeUP, SystemNativeSMP, SystemXen} {
			cfg := DefaultRRConfig(sys, OptNone)
			cfg.DurationNs = 150_000_000
			orig, err := RunRR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Opt = OptFull
			opt, err := RunRR(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(orig.RequestsPerSec, fmt.Sprintf("reqps_orig_%d", int(sys)))
			if i == 0 {
				fmt.Printf("  %-10s original %5.0f | optimized %5.0f (%+.2f%%)\n",
					sys, orig.RequestsPerSec, opt.RequestsPerSec,
					(opt.RequestsPerSec/orig.RequestsPerSec-1)*100)
			}
		}
	}
}

// BenchmarkRSS_QueueScaling goes beyond the paper: aggregate throughput
// and per-CPU utilization of the multi-queue RSS pipeline as the queue
// count scales 1->8 over a 200-flow, 8-link workload (the N=1 row is the
// paper's single-softirq receiver; 8 links keep the wire ceiling above
// what 2 CPUs can chew).
func BenchmarkRSS_QueueScaling(b *testing.B) {
	queues := []int{1, 2, 4, 8}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("RSS queue scaling (UP baseline, 200 flows, 8 links; 1 queue is the paper's machine)")
			fmt.Printf("  %-7s %10s %8s  %s\n", "queues", "Mb/s", "util", "per-CPU util")
		}
		for _, q := range queues {
			cfg := DefaultStreamConfig(SystemNativeUP, OptNone)
			cfg.NICs = 8
			cfg.Connections = 200
			cfg.Queues = q
			res := benchStream(b, cfg)
			b.ReportMetric(res.ThroughputMbps, fmt.Sprintf("Mbps_q%d", q))
			if i == 0 {
				per := ""
				for _, u := range res.PerCPUUtil {
					per += fmt.Sprintf(" %4.0f%%", u*100)
				}
				fmt.Printf("  %-7d %10.0f %7.0f%% %s\n", q, res.ThroughputMbps, res.CPUUtil*100, per)
			}
		}
	}
}

// BenchmarkXen_QueueScaling is the paravirtual counterpart of
// BenchmarkRSS_QueueScaling: aggregate throughput as the number of
// per-vCPU netfront/netback I/O channels scales 1->4 on a CPU-bound
// many-flow Xen workload (1 channel is the paper's single-event-channel
// machine).
func BenchmarkXen_QueueScaling(b *testing.B) {
	queues := []int{1, 2, 4}
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Println("Xen I/O channel scaling (baseline, 100 flows, 5 links)")
			fmt.Printf("  %-9s %10s %8s  %s\n", "channels", "Mb/s", "util", "per-vCPU util")
		}
		for _, q := range queues {
			cfg := DefaultStreamConfig(SystemXen, OptNone)
			cfg.Connections = 100
			cfg.Queues = q
			res := benchStream(b, cfg)
			b.ReportMetric(res.ThroughputMbps, fmt.Sprintf("Mbps_q%d", q))
			if i == 0 {
				per := ""
				for _, u := range res.PerCPUUtil {
					per += fmt.Sprintf(" %4.0f%%", u*100)
				}
				fmt.Printf("  %-9d %10.0f %7.0f%% %s\n", q, res.ThroughputMbps, res.CPUUtil*100, per)
			}
		}
	}
}

// BenchmarkRSS_ManyFlowChurn exercises the production-shaped workload:
// 400 zipf-skewed flows with connection churn on a 4-queue optimized
// pipeline.
func BenchmarkRSS_ManyFlowChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
		cfg.Connections = 400
		cfg.Queues = 4
		cfg.FlowSkew = 1.1
		cfg.ChurnIntervalNs = 2_000_000
		res := benchStream(b, cfg)
		b.ReportMetric(res.ThroughputMbps, "Mbps")
		b.ReportMetric(res.AggFactor, "agg_factor")
		b.ReportMetric(float64(res.FlowsTornDown), "flows_churned")
		if i == 0 {
			fmt.Printf("400 skewed flows, 4 queues: %.0f Mb/s at %.0f%% mean CPU, agg %.1f, %d churned\n",
				res.ThroughputMbps, res.CPUUtil*100, res.AggFactor, res.FlowsTornDown)
		}
	}
}

// BenchmarkSteer_DynamicSteering measures the 200-flow zipf workload
// under static RSS vs dynamic steering (rebalancer + aRFS): the
// utilization-spread narrowing and its throughput cost (none; on
// CPU-bound systems steering gains throughput).
func BenchmarkSteer_DynamicSteering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
		cfg.NICs = 8
		cfg.Connections = 200
		cfg.Queues = 4
		cfg.FlowSkew = 1.2
		static := benchStream(b, cfg)
		cfg.Steering = SteerConfig{Enabled: true, ARFS: true}
		steered := benchStream(b, cfg)
		b.ReportMetric(steered.ThroughputMbps, "Mbps")
		b.ReportMetric(static.UtilSpread(), "static_spread")
		b.ReportMetric(steered.UtilSpread(), "steered_spread")
		if i == 0 {
			fmt.Printf("steering: spread %.3f -> %.3f, %.0f -> %.0f Mb/s, %d moves, %d rules\n",
				static.UtilSpread(), steered.UtilSpread(),
				static.ThroughputMbps, steered.ThroughputMbps,
				steered.Steer.Moves, steered.Steer.RulesProgrammed)
		}
	}
}

// BenchmarkReorder_WindowSweep measures reordering tolerance: the
// 200-flow zipf workload under 2% adjacent-swap reorder, with the
// resequencing window off (strict flush-on-OOO) and on. The window must
// recover the aggregation factor (and with it bytes/aggregate) that the
// reorder otherwise destroys.
func BenchmarkReorder_WindowSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, win := range []int{0, 4} {
			cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
			cfg.NICs = 8
			cfg.Connections = 200
			cfg.Queues = 4
			cfg.FlowSkew = 1.1
			cfg.Reorder = ReorderConfig{OneIn: 50, Distance: 1}
			cfg.ReorderWindow = win
			res := benchStream(b, cfg)
			b.ReportMetric(res.ThroughputMbps, fmt.Sprintf("Mbps_w%d", win))
			b.ReportMetric(res.AggFactor, fmt.Sprintf("agg_w%d", win))
			if i == 0 {
				fmt.Printf("2%% swaps, window %d: %.0f Mb/s, agg %.2f, %d mismatch flushes, %d stitched, %d OOO segs\n",
					win, res.ThroughputMbps, res.AggFactor,
					res.AggStats.FlushMismatch, res.AggStats.Stitched, res.OOOSegs)
			}
		}
	}
}

// BenchmarkLoss_Sweep is the loss degradation study in miniature: the
// paravirtual five-link stream under 1% uniform loss with Reno-only and
// SACK-based recovery. The headline metrics are the throughput each
// recovery style sustains and the fast-retransmit/RTO mix behind it.
func BenchmarkLoss_Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sack := range []bool{false, true} {
			cfg := DefaultStreamConfig(SystemXen, OptFull)
			cfg.Loss = LossConfig{OneIn: 100}
			cfg.SACK = sack
			cfg.Telemetry.Latency = true
			res := benchStream(b, cfg)
			name := "reno"
			if sack {
				name = "sack"
			}
			b.ReportMetric(res.ThroughputMbps, "Mbps_"+name)
			b.ReportMetric(float64(res.Loss.FastRetransmits), "fastrtx_"+name)
			b.ReportMetric(float64(res.Loss.RTOs), "rto_"+name)
			if i == 0 {
				fmt.Printf("1%% loss, %s: %.0f Mb/s, %d lost, %d fast rtx, %d RTOs, %d sack rtx, rec p99 %.0f µs\n",
					name, res.ThroughputMbps, res.LostFrames, res.Loss.FastRetransmits,
					res.Loss.RTOs, res.Loss.SACKRetransmits,
					float64(res.Latency.Recovery.P99Ns)/1e3)
			}
		}
	}
}

// BenchmarkTimeWait_RestartStorm measures the TIME_WAIT subsystem under
// the restart-storm workload: half the flows torn down mid-measurement
// and redialed on their own four-tuples (SYN-time reuse) against a
// 50k-entry seeded backlog. Receive-path cycles/byte must stay at the
// storm-free level — the deadline wheel charges per entry touched, never
// per entry lingering.
func BenchmarkTimeWait_RestartStorm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
		cfg.NICs = 4
		cfg.Connections = 80
		cfg.Queues = 2
		cfg.TimeWaitReuse = true
		cfg.RestartStorm = RestartStormConfig{
			AtNs:            35_000_000, // 10 ms into benchStream's measured interval
			Fraction:        0.5,
			PrefillTimeWait: 50_000,
		}
		res := benchStream(b, cfg)
		b.ReportMetric(res.ThroughputMbps, "Mbps")
		b.ReportMetric(res.CyclesPerByte(), "cyc/byte")
		b.ReportMetric(float64(res.TimeWait.Peak), "tw_peak")
		b.ReportMetric(float64(res.TimeWait.Reused), "tw_reused")
		if i == 0 {
			fmt.Printf("restart storm: tw peak %d (%.1f MiB), %d reaped, %d reused (%d refused), %d/%d reconnected, %.2f cyc/byte\n",
				res.TimeWait.Peak, float64(res.TimeWait.PeakBytes)/(1<<20),
				res.TimeWait.Reaped, res.TimeWait.Reused, res.TimeWait.ReuseRefused,
				res.Storm.Reconnected, res.Storm.TornDown, res.CyclesPerByte())
		}
	}
}

// BenchmarkConnScale_Demux is the million-flow demux comparison: a
// skewed 64-flow active subset receiving against a 200k-endpoint
// registered population, under the cache-conscious open-addressed shards
// and the seed-style map baseline. The headline metrics are the demux
// cycles charged per host packet (the capacity-miss excess of walking a
// mostly-cold table) and the resulting cycles/byte for each layout.
func BenchmarkConnScale_Demux(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, layout := range []FlowLayout{LayoutOpenAddressed, LayoutSeedMap} {
			cfg := DefaultStreamConfig(SystemNativeUP, OptNone)
			cfg.NICs = 4
			cfg.Connections = 64
			cfg.FlowSkew = 1.1
			cfg.FlowLayout = layout
			cfg.RegisteredFlows = 200_000
			res := benchStream(b, cfg)
			b.ReportMetric(res.DemuxCyclesPerPacket(), "demux_cpp_"+layout.String())
			b.ReportMetric(res.CyclesPerByte(), "cyc_byte_"+layout.String())
			if i == 0 {
				fmt.Printf("connscale %4s @200k: %.0f Mb/s, %.2f cyc/byte, demux %.0f c/pkt, table %.1f MiB, budget peak %.1f MiB\n",
					layout, res.ThroughputMbps, res.CyclesPerByte(),
					res.DemuxCyclesPerPacket(),
					float64(res.Demux.Bytes)/(1<<20),
					float64(res.Mem.PeakBytes)/(1<<20))
			}
		}
	}
}

// BenchmarkAblation_AggLimitOne checks §5.5: an Aggregation Limit of 1
// (the engine on the path but never coalescing) must not degrade
// performance relative to the baseline.
func BenchmarkAblation_AggLimitOne(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base := benchStream(b, DefaultStreamConfig(SystemNativeUP, OptNone))
		cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
		cfg.AggLimit = 1
		lim1 := benchStream(b, cfg)
		b.ReportMetric(lim1.CyclesPerPacket/base.CyclesPerPacket, "limit1_vs_base_x")
		if i == 0 {
			fmt.Printf("limit 1: %.0f cycles/pkt vs baseline %.0f (%+.1f%%; paper: no degradation)\n",
				lim1.CyclesPerPacket, base.CyclesPerPacket,
				(lim1.CyclesPerPacket/base.CyclesPerPacket-1)*100)
		}
	}
}

// BenchmarkHarness_WallClock measures the simulator harness itself —
// real wall-clock ns/op and allocs/op for one fixed experiment, serial
// versus the parallel intra-run scheduler at 1, 2 and 4 queues. This is
// the one benchmark in the file where ns/op IS the interesting number:
// it tracks the tentpole's speedup and the hot-path allocation budget.
// The workload is the 4-queue connection-scale sweep point (8 links so
// the wire ceiling sits above the CPUs; 100k registered flows).
func BenchmarkHarness_WallClock(b *testing.B) {
	for _, par := range []bool{false, true} {
		mode := "serial"
		if par {
			mode = "parallel"
		}
		for _, q := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/q%d", mode, q), func(b *testing.B) {
				cfg := DefaultStreamConfig(SystemNativeSMP, OptFull)
				cfg.NICs = 8
				cfg.Queues = q
				cfg.Connections = 64
				cfg.RegisteredFlows = 100_000
				cfg.ParallelScheduler = par
				cfg.DurationNs = 50_000_000
				cfg.WarmupNs = 25_000_000
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := RunStream(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(res.ThroughputMbps, "Mb/s")
					}
				}
			})
		}
	}
}
