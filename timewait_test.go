package repro

import "testing"

// stormRun executes the restart-storm scenario at a given seeded
// TIME_WAIT backlog: half the flows torn down mid-measurement and
// redialed on their own four-tuples with tw_reuse on.
func stormRun(t *testing.T, sys SystemKind, prefill int) StreamResult {
	t.Helper()
	cfg := DefaultStreamConfig(sys, OptFull)
	cfg.NICs = 4
	cfg.Connections = 80
	cfg.Queues = 2
	cfg.TimeWaitReuse = true
	cfg.RestartStorm = RestartStormConfig{
		AtNs:            20_000_000, // 5 ms into the measured interval
		Fraction:        0.5,
		PrefillTimeWait: prefill,
	}
	return shortStream(t, cfg)
}

// TestRestartStormScalesFlat is the TIME_WAIT-at-scale acceptance check:
// as the lingering population scales 1k → 100k (far beyond what the port
// space admits as live flows), receive-path cycles per byte must stay
// flat — the sharded deadline wheel charges each insert/reap a constant
// number of touches, where the seed's flat slice rescanned the whole
// population on every insert and sweep. The storm itself must complete:
// every victim redials its own four-tuple through SYN-time reuse or the
// reap, and the table accounting balances.
func TestRestartStormScalesFlat(t *testing.T) {
	for _, sys := range []SystemKind{SystemNativeUP, SystemXen} {
		t.Run(sys.String(), func(t *testing.T) {
			small := stormRun(t, sys, 1_000)
			big := stormRun(t, sys, 100_000)
			for _, r := range []struct {
				name string
				res  StreamResult
			}{{"1k", small}, {"100k", big}} {
				st := r.res.TimeWait
				if st.Entered != st.Reaped+st.Reused+uint64(st.Len) {
					t.Errorf("%s: TIME_WAIT accounting broken: %+v", r.name, st)
				}
				if r.res.Storm == nil || r.res.Storm.TornDown == 0 {
					t.Fatalf("%s: storm never fired", r.name)
				}
				if r.res.Storm.Reconnected != r.res.Storm.TornDown {
					t.Errorf("%s: only %d of %d victims reconnected",
						r.name, r.res.Storm.Reconnected, r.res.Storm.TornDown)
				}
				if st.Reused == 0 {
					t.Errorf("%s: no SYN-time reuse during the storm", r.name)
				}
			}
			if small.TimeWait.Peak < 1_000 || big.TimeWait.Peak < 100_000 {
				t.Errorf("peaks %d/%d below the seeded backlogs",
					small.TimeWait.Peak, big.TimeWait.Peak)
			}
			// The O(1)-amortized claim: a 100x larger lingering population
			// costs only the (real, per-entry) reap touches of the entries
			// that actually expired in-window — single-digit percent of the
			// receive path, not a rescan-everything blowup.
			cpbSmall, cpbBig := small.CyclesPerByte(), big.CyclesPerByte()
			if cpbSmall <= 0 || cpbBig <= 0 {
				t.Fatal("storm run delivered nothing")
			}
			if cpbBig > cpbSmall*1.15 {
				t.Errorf("cycles/byte grew %.2f → %.2f (%.0f%%) over 1k → 100k TIME_WAIT entries",
					cpbSmall, cpbBig, (cpbBig/cpbSmall-1)*100)
			}
			if big.ThroughputMbps < small.ThroughputMbps*0.92 {
				t.Errorf("throughput collapsed with the backlog: %.0f → %.0f Mb/s",
					small.ThroughputMbps, big.ThroughputMbps)
			}
		})
	}
}

// TestRestartStormWithoutReuse: with tw_reuse off (the seed behaviour
// the goldens pin), a storm still completes — every redial backs off
// until the 2·MSL reap frees its four-tuple, and no entry is ever
// recycled.
func TestRestartStormWithoutReuse(t *testing.T) {
	cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
	cfg.NICs = 2
	cfg.Connections = 16
	cfg.Queues = 2
	cfg.RestartStorm = RestartStormConfig{AtNs: 18_000_000, Fraction: 0.5}
	res := shortStream(t, cfg)
	if res.Storm == nil || res.Storm.TornDown == 0 {
		t.Fatal("storm never fired")
	}
	if res.TimeWait.Reused != 0 || res.TimeWait.ReuseRefused != 0 {
		t.Errorf("reuse machinery ran while disabled: %+v", res.TimeWait)
	}
	if res.Storm.Retries == 0 {
		t.Error("no redial ever backed off on the lingering entry")
	}
	if res.Storm.Reconnected != res.Storm.TornDown {
		t.Errorf("only %d of %d victims reconnected after the reap",
			res.Storm.Reconnected, res.Storm.TornDown)
	}
	st := res.TimeWait
	if st.Entered != st.Reaped+uint64(st.Len) {
		t.Errorf("reuse-disabled accounting should balance without the Reused term: %+v", st)
	}
}
