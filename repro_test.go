package repro

import (
	"strings"
	"testing"
)

func TestFacadeStream(t *testing.T) {
	cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
	cfg.DurationNs = 30_000_000
	cfg.WarmupNs = 15_000_000
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps < 4000 {
		t.Errorf("optimized UP throughput = %.0f Mb/s", res.ThroughputMbps)
	}
	out := FormatBreakdown("test", res.Breakdown)
	if !strings.Contains(out, "aggr") {
		t.Errorf("breakdown missing aggr category:\n%s", out)
	}
}

func TestFacadeRR(t *testing.T) {
	cfg := DefaultRRConfig(SystemNativeUP, OptNone)
	cfg.DurationNs = 50_000_000
	res, err := RunRR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.RequestsPerSec < 7000 || res.RequestsPerSec > 9000 {
		t.Errorf("RR rate = %.0f req/s", res.RequestsPerSec)
	}
}

func TestFacadeProfiles(t *testing.T) {
	for _, p := range []CostParams{NativeUP(), NativeUP38(), NativeSMP(), XenGuest()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestFacadeComparison(t *testing.T) {
	short := func(opt OptLevel) StreamResult {
		cfg := DefaultStreamConfig(SystemXen, opt)
		cfg.DurationNs = 30_000_000
		cfg.WarmupNs = 15_000_000
		res, err := RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	orig := short(OptNone)
	opt := short(OptFull)
	out := FormatComparison("Figure 10", orig.Breakdown, opt.Breakdown, true)
	for _, want := range []string{"netback", "netfront", "xen", "factor"} {
		if !strings.Contains(out, want) {
			t.Errorf("Xen comparison missing %q:\n%s", want, out)
		}
	}
}
