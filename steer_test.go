package repro

import "testing"

// steeredStream runs the 200-flow zipf workload of the steering
// acceptance criteria at the golden capture interval.
func steeredStream(t *testing.T, sys SystemKind, opt OptLevel, steer SteerConfig) StreamResult {
	t.Helper()
	cfg := DefaultStreamConfig(sys, opt)
	cfg.NICs = 8
	cfg.Connections = 200
	cfg.Queues = 4
	cfg.FlowSkew = 1.2
	cfg.Steering = steer
	cfg.DurationNs = 30_000_000
	cfg.WarmupNs = 15_000_000
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSteeringNarrowsSpread is the acceptance check: on 200 zipf-skewed
// flows, dynamic steering (rebalancer + aRFS) must materially narrow the
// max−min per-CPU utilization spread versus static RSS without giving up
// throughput — on the native pipeline and the paravirtual one.
func TestSteeringNarrowsSpread(t *testing.T) {
	cases := []struct {
		sys SystemKind
		opt OptLevel
	}{
		{SystemNativeUP, OptFull}, // wire-limited: imbalance shows as idle-CPU spread
		{SystemXen, OptNone},      // CPU-bound: imbalance costs throughput directly
	}
	for _, c := range cases {
		static := steeredStream(t, c.sys, c.opt, SteerConfig{})
		steered := steeredStream(t, c.sys, c.opt, SteerConfig{Enabled: true, ARFS: true})

		if static.UtilSpread() < 0.05 {
			t.Fatalf("%v/%v: static spread %.3f too small — workload lost its skew, test is vacuous",
				c.sys, c.opt, static.UtilSpread())
		}
		if steered.UtilSpread() > 0.55*static.UtilSpread() {
			t.Errorf("%v/%v: spread %.3f → %.3f: not a material narrowing",
				c.sys, c.opt, static.UtilSpread(), steered.UtilSpread())
		}
		if steered.ThroughputMbps < static.ThroughputMbps*0.995 {
			t.Errorf("%v/%v: steering cost throughput: %.0f → %.0f Mb/s",
				c.sys, c.opt, static.ThroughputMbps, steered.ThroughputMbps)
		}
		if steered.Steer == nil {
			t.Fatalf("%v/%v: no steering report", c.sys, c.opt)
		}
		if steered.Steer.Moves == 0 && steered.Steer.RulesProgrammed == 0 {
			t.Errorf("%v/%v: steering enabled but never acted", c.sys, c.opt)
		}
		if static.Steer != nil {
			t.Errorf("%v/%v: static run carries a steering report", c.sys, c.opt)
		}
	}
}

// TestSteeringInvalidConfig: bad steering parameters are a configuration
// error through the public API, not a crash.
func TestSteeringInvalidConfig(t *testing.T) {
	cfg := DefaultStreamConfig(SystemNativeUP, OptNone)
	cfg.Steering = SteerConfig{Enabled: true, MinMoveEpochs: -1}
	cfg.DurationNs = 1_000_000
	if _, err := RunStream(cfg); err == nil {
		t.Error("negative MinMoveEpochs did not error")
	}
}

// TestSteeringRebalancerAlone: the indirection rebalancer without aRFS
// must already narrow the spread (the two policies are independent).
func TestSteeringRebalancerAlone(t *testing.T) {
	static := steeredStream(t, SystemNativeUP, OptNone, SteerConfig{})
	reb := steeredStream(t, SystemNativeUP, OptNone, SteerConfig{Enabled: true})
	if reb.UtilSpread() > 0.7*static.UtilSpread() {
		t.Errorf("rebalancer alone: spread %.3f → %.3f", static.UtilSpread(), reb.UtilSpread())
	}
	if reb.ThroughputMbps < static.ThroughputMbps*0.995 {
		t.Errorf("rebalancer cost throughput: %.0f → %.0f Mb/s",
			static.ThroughputMbps, reb.ThroughputMbps)
	}
	if reb.Steer.Moves == 0 {
		t.Error("rebalancer never moved a bucket")
	}
	if reb.Steer.RulesProgrammed != 0 {
		t.Errorf("rebalancer-only run programmed %d aRFS rules", reb.Steer.RulesProgrammed)
	}
}

// TestSteeringFollowsMigratingApp: with the app-migration workload, aRFS
// keeps re-steering (rules chase the application's CPU) and the stream
// keeps its throughput.
func TestSteeringFollowsMigratingApp(t *testing.T) {
	settled := steeredStream(t, SystemNativeUP, OptFull,
		SteerConfig{Enabled: true, ARFS: true})
	res := steeredStream(t, SystemNativeUP, OptFull,
		SteerConfig{Enabled: true, ARFS: true, AppMigrateIntervalNs: 2_000_000})
	if res.Steer.AppMigrations == 0 {
		t.Fatal("no app migrations fired")
	}
	// Each migration's next socket read re-programs the flow's rule, so
	// the migrating run must program measurably more rules than the
	// settled one (which programs each mis-hashed flow once).
	if res.Steer.RulesProgrammed < settled.Steer.RulesProgrammed+res.Steer.AppMigrations/2 {
		t.Errorf("rules programmed %d (settled: %d) with %d app migrations: aRFS not following",
			res.Steer.RulesProgrammed, settled.Steer.RulesProgrammed, res.Steer.AppMigrations)
	}
	if res.ThroughputMbps < 7000 {
		t.Errorf("throughput collapsed under app migration: %.0f Mb/s", res.ThroughputMbps)
	}
}

// TestXenAsymmetricVCPUs: the dom0-queues ≠ guest-vCPUs topology runs,
// spreads guest work over all vCPUs with zero ownership steals (netback
// re-steers), and out-performs the symmetric 2-queue machine on a
// CPU-bound workload.
func TestXenAsymmetricVCPUs(t *testing.T) {
	run := func(q, v int) StreamResult {
		cfg := DefaultStreamConfig(SystemXen, OptNone)
		cfg.Connections = 100
		cfg.Queues = q
		cfg.GuestVCPUs = v
		cfg.FlowSkew = 1.1
		cfg.DurationNs = 30_000_000
		cfg.WarmupNs = 15_000_000
		res, err := RunStream(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	sym := run(2, 0)
	asym := run(2, 4)
	if len(asym.PerCPUUtil) != 4 {
		t.Fatalf("asymmetric run reports %d CPUs, want 4", len(asym.PerCPUUtil))
	}
	if asym.ThroughputMbps < sym.ThroughputMbps*1.15 {
		t.Errorf("2 queues + 4 vCPUs = %.0f Mb/s, no gain over symmetric %.0f",
			asym.ThroughputMbps, sym.ThroughputMbps)
	}
	for i, s := range asym.ShardStats {
		if s.Steals != 0 {
			t.Errorf("shard %d: %d steals — netback re-steering broke ownership", i, s.Steals)
		}
	}
	// Native machines must reject the knob.
	bad := DefaultStreamConfig(SystemNativeUP, OptNone)
	bad.GuestVCPUs = 2
	bad.DurationNs = 1_000_000
	if _, err := RunStream(bad); err == nil {
		t.Error("GuestVCPUs accepted on a native machine")
	}
}

// TestXenFewerVCPUsThanQueues: the reverse asymmetry (dom0 queues >
// guest vCPUs) must run — with dynamic steering active — steering only
// ever targets channel-capable CPUs, never the dom0-only cores.
// Regression: steering used to plan moves over CPUs() = max(queues,
// vcpus) and panic writing the vcpus-sized channel map.
func TestXenFewerVCPUsThanQueues(t *testing.T) {
	cfg := DefaultStreamConfig(SystemXen, OptFull)
	cfg.Connections = 80
	cfg.Queues = 4
	cfg.GuestVCPUs = 2
	cfg.FlowSkew = 1.2
	cfg.Steering = SteerConfig{Enabled: true, ARFS: true, AppMigrateIntervalNs: 3_000_000}
	cfg.DurationNs = 30_000_000
	cfg.WarmupNs = 15_000_000
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputMbps <= 0 {
		t.Fatal("stream stalled")
	}
	if len(res.PerCPUUtil) != 4 {
		t.Fatalf("reported %d CPUs, want 4 (dom0 queues)", len(res.PerCPUUtil))
	}
	for _, cpu := range res.Steer.Indirection {
		if cpu >= 2 {
			t.Fatalf("channel map names vCPU %d, only 2 exist", cpu)
		}
	}
	// With every dom0→channel push remote (queues > vcpus), packets wait
	// on the netfront rings, and a steering change mid-wait is delivered
	// by the old vCPU: a bounded, accounted transient — not silent
	// misdelivery, but not zero either.
	var steals, host uint64
	for _, s := range res.ShardStats {
		steals += s.Steals
		host += s.HostPackets
	}
	if steals*100 > host {
		t.Errorf("steals %d exceed 1%% of %d deliveries: migration transients not bounded", steals, host)
	}
}

// TestChurnTeardownHandshake: connection churn now pays for teardown on
// the receive path — FIN processed, final ACK sent, endpoints linger in
// TIME_WAIT and are reaped — while throughput holds.
func TestChurnTeardownHandshake(t *testing.T) {
	cfg := DefaultStreamConfig(SystemNativeUP, OptFull)
	cfg.Connections = 200
	cfg.Queues = 4
	cfg.FlowSkew = 1.1
	cfg.ChurnIntervalNs = 2_000_000
	cfg.DurationNs = 30_000_000
	cfg.WarmupNs = 15_000_000
	res, err := RunStream(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowsTornDown == 0 {
		t.Fatal("churn never tore a flow down")
	}
	if res.TimeWaitEntered == 0 {
		t.Error("no teardown reached TIME_WAIT: FIN handshake not completing")
	}
	if res.TimeWaitReaped == 0 {
		t.Error("no TIME_WAIT entry was reaped")
	}
	if res.TimeWaitReaped > res.TimeWaitEntered {
		t.Errorf("reaped %d > entered %d", res.TimeWaitReaped, res.TimeWaitEntered)
	}
	if res.ThroughputMbps < 3000 {
		t.Errorf("churned throughput collapsed: %.0f Mb/s", res.ThroughputMbps)
	}
}
